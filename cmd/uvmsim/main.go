// Command uvmsim runs one workload through the UVM simulator and prints a
// batch-level summary — the quickest way to explore driver policies.
//
// Usage:
//
//	uvmsim -workload stream -mb 64 -gpu-mb 256 -batch 256 -prefetch=true
//	uvmsim -workload sgemm -n 2048 -gpu-mb 24 -prefetch=false -batches
//	uvmsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"guvm"
	"guvm/internal/analysis"
	"guvm/internal/obs"
	"guvm/internal/sim"
	"guvm/internal/stats"
	"guvm/internal/trace"
	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

func buildWorkload(name string, mb uint64, n, hostThreads int, seed uint64) (workloads.Workload, error) {
	bytes := mb << 20
	switch name {
	case "vecadd":
		return workloads.NewVecAddPaper(), nil
	case "vecadd-prefetch":
		return workloads.NewVecAddPrefetch(), nil
	case "vecadd-coalesced":
		return workloads.NewVecAddCoalesced(), nil
	case "regular":
		return workloads.NewRegular(bytes, 160), nil
	case "random":
		return workloads.NewRandom(bytes, 160, 300, seed), nil
	case "stream":
		return workloads.NewStream(bytes, 24), nil
	case "sgemm":
		return workloads.NewSGEMM(n), nil
	case "dgemm":
		return workloads.NewDGEMM(n), nil
	case "fft":
		return workloads.NewFFT(int(bytes/8), 10), nil
	case "gauss-seidel":
		return workloads.NewGaussSeidel(n, 3), nil
	case "hpgmg":
		return workloads.NewHPGMG(bytes, hostThreads), nil
	case "spmv":
		return workloads.NewSpMV(n*n/64, 16, seed), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

var workloadNames = []string{
	"vecadd", "vecadd-prefetch", "vecadd-coalesced", "regular", "random", "stream",
	"sgemm", "dgemm", "fft", "gauss-seidel", "hpgmg", "spmv",
}

func main() {
	var (
		name        = flag.String("workload", "stream", "workload name (see -list)")
		mb          = flag.Uint64("mb", 64, "workload footprint knob in MiB (per array / fine grid)")
		n           = flag.Int("n", 2048, "problem dimension for gemm/gauss-seidel")
		gpuMB       = flag.Uint64("gpu-mb", 256, "GPU memory capacity in MiB")
		batch       = flag.Int("batch", 256, "fault batch size limit")
		prefetch    = flag.Bool("prefetch", true, "enable the density prefetcher")
		hostThreads = flag.Int("host-threads", 1, "CPU threads for host-side phases")
		seed        = flag.Uint64("seed", 11, "workload RNG seed")
		explicit    = flag.Bool("explicit", false, "explicit (cudaMemcpy-style) management instead of UVM")
		showBatches = flag.Bool("batches", false, "print per-batch records")
		list        = flag.Bool("list", false, "list workloads and exit")

		// Runtime invariant auditing (internal/audit).
		auditOn       = flag.Bool("audit", false, "run the invariant auditor alongside the simulation; violations fail the run")
		auditInterval = flag.Int("audit-interval", 1, "audit every Nth batch (with -audit)")
		verifyDet     = flag.Bool("verify-determinism", false, "run the workload twice and compare per-batch state digests; exits non-zero on divergence")

		// §6-proposal driver extensions.
		workers    = flag.Int("workers", 1, "parallel VABlock service workers")
		lpt        = flag.Bool("lpt", false, "LPT load balancing across workers")
		adaptive   = flag.Bool("adaptive-batch", false, "duplicate-adaptive batch sizing")
		asyncUnmap = flag.Bool("async-unmap", false, "preemptive CPU unmapping at kernel launch")
		xblock     = flag.Int("xblock-prefetch", 0, "cross-VABlock prefetch scope (blocks ahead)")

		// Named policy selection (the registry in internal/uvm): the shared
		// -evict/-prefetch-policy/-batch-sizing/-arch/-list-policies block.
		// Empty prefetch/batch-sizing selections defer to the individual
		// knobs above; non-empty ones override them.
		pol       = uvm.RegisterPolicyFlags(flag.CommandLine)
		analyze   = flag.Bool("analyze", false, "print post-run telemetry analysis")
		traceFile = flag.String("trace", "", "replay a recorded access trace instead of a named workload")
		csvOut    = flag.String("csv", "", "write per-batch records as CSV to this file")
		csvInject = flag.Bool("csv-inject", false, "append injected-fault columns to the -csv export")
		faultsOut = flag.String("faults-jsonl", "", "write per-fault records as JSON lines to this file (enables fault retention)")

		// Observability (internal/obs): the shared flag set (-trace-out,
		// -metrics-csv/-json/-interval, -metrics-addr) plus uvmsim-only
		// extras. All off by default.
		ofl         = obs.RegisterFlags(flag.CommandLine)
		pfl         = obs.RegisterProfileFlags(flag.CommandLine)
		traceEngine = flag.Bool("trace-engine", false, "also mark every engine dispatch in the trace (with -trace-out; capped)")
		metricsHold = flag.Duration("metrics-hold", 0, "keep the -metrics-addr endpoint up this long after the run finishes")

		// Deterministic fault injection (all rates default to 0 = off).
		injSeed        = flag.Uint64("inject-seed", 1, "fault-injection RNG seed")
		injDropRate    = flag.Float64("inject-drop-rate", 0, "probability a fault record is dropped before reaching the fault buffer")
		injDropRetries = flag.Int("inject-drop-retries", 3, "hardware re-emission attempts for a dropped fault record")
		injMigRate     = flag.Float64("inject-mig-rate", 0, "probability a DMA transfer attempt fails transiently")
		injMigRetries  = flag.Int("inject-mig-retries", 4, "transfer retries (with exponential backoff) before a migration is fatal")
		injHostRate    = flag.Float64("inject-host-rate", 0, "probability a host page-population call fails")
		injHostRetries = flag.Int("inject-host-retries", 6, "population retries (with batch shrinking and forced eviction) before fatal")

		// Hardware fault domain (internal/faultinject.HardwareInjector):
		// seeded link degradation/flapping epochs and scheduled device
		// death. Off by default; -hw-fault enables the link regimes at the
		// rates below, -hw-kill-batch schedules device death on its own.
		hwFault         = flag.Bool("hw-fault", false, "enable the hardware fault domain (degraded/flapping link epochs)")
		hwSeed          = flag.Uint64("hw-seed", 1, "hardware fault-domain RNG seed")
		hwEpoch         = flag.Duration("hw-epoch", 100*time.Microsecond, "virtual-time length of one link-health epoch")
		hwDegradeRate   = flag.Float64("hw-degrade-rate", 0.2, "probability a link-health epoch runs at degraded bandwidth (with -hw-fault)")
		hwDegradeFactor = flag.Float64("hw-degrade-factor", 0.25, "bandwidth multiplier during a degraded epoch")
		hwFlapRate      = flag.Float64("hw-flap-rate", 0.1, "probability a link-health epoch is flapping (with -hw-fault)")
		hwFlapDrop      = flag.Float64("hw-flap-drop-rate", 0.5, "probability one transfer operation drops during a flapping epoch")
		hwRetryLimit    = flag.Int("hw-retry-limit", 6, "driver transfer retries after a dropped operation before the link failure is fatal")
		hwKillBatch     = flag.Int("hw-kill-batch", 0, "kill the device after it completes this many fault batches (1-based; 0 disables)")
	)
	flag.Parse()

	if *list {
		for _, w := range workloadNames {
			fmt.Println(w)
		}
		return
	}
	if pol.HandleList(os.Stdout) {
		return
	}

	var w workloads.Workload
	var err error
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "uvmsim: %v\n", ferr)
			os.Exit(2)
		}
		w, err = workloads.ParseTrace(f)
		f.Close()
	} else {
		w, err = buildWorkload(*name, *mb, *n, *hostThreads, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
		os.Exit(2)
	}

	cfg := guvm.DefaultConfig()
	cfg.Driver.GPUMemBytes = *gpuMB << 20
	cfg.Driver.BatchSize = *batch
	cfg.Driver.PrefetchEnabled = *prefetch
	cfg.Driver.Upgrade64K = *prefetch
	cfg.Driver.ServiceWorkers = *workers
	cfg.Driver.LoadBalanceLPT = *lpt
	cfg.Driver.AdaptiveBatch = *adaptive
	cfg.Driver.AsyncUnmap = *asyncUnmap
	cfg.Driver.CrossBlockPrefetch = *xblock
	cfg.Policies = pol.Selection()
	// Resolve eagerly so an unregistered name is rejected (with the valid
	// options) before any workload work happens, for every run mode.
	if err := cfg.Policies.Apply(&cfg.Driver); err != nil {
		fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
		os.Exit(2)
	}

	if *faultsOut != "" {
		cfg.KeepFaults = true
	}
	cfg.Inject.Seed = *injSeed
	cfg.Inject.BufferDropRate = *injDropRate
	cfg.Inject.BufferDropRetries = *injDropRetries
	cfg.Inject.MigrateFailRate = *injMigRate
	cfg.Inject.MigrateMaxRetries = *injMigRetries
	cfg.Inject.HostAllocFailRate = *injHostRate
	cfg.Inject.HostAllocMaxRetries = *injHostRetries
	if *hwFault || *hwKillBatch > 0 {
		cfg.HW.Seed = *hwSeed
		cfg.HW.EpochLength = sim.Time(hwEpoch.Nanoseconds())
		cfg.HW.DegradedBandwidthFactor = *hwDegradeFactor
		cfg.HW.FlapDropRate = *hwFlapDrop
		cfg.HW.LinkRetryLimit = *hwRetryLimit
		cfg.HW.KillBatch = *hwKillBatch
		if *hwFault {
			cfg.HW.LinkDegradeRate = *hwDegradeRate
			cfg.HW.LinkFlapRate = *hwFlapRate
		}
	}
	cfg.Audit.Enabled = *auditOn
	cfg.Audit.Interval = *auditInterval
	ofl.Apply(&cfg.Obs)
	pfl.Apply(&cfg.Obs)
	cfg.Obs.EngineEvents = *traceEngine

	if *verifyDet {
		if *explicit {
			fmt.Fprintln(os.Stderr, "uvmsim: -verify-determinism applies to UVM runs, not -explicit")
			os.Exit(2)
		}
		rep, err := guvm.VerifyDeterminism(cfg, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
			os.Exit(1)
		}
		if !rep.Match {
			fmt.Fprintf(os.Stderr, "uvmsim: determinism check FAILED: first divergent batch %d (%d snapshots compared)\n",
				rep.FirstDivergentBatch, rep.Compared)
			fmt.Fprintf(os.Stderr, "--- run A state at divergence ---\n%s\n", rep.A.Dump)
			fmt.Fprintf(os.Stderr, "--- run B state at divergence ---\n%s\n", rep.B.Dump)
			os.Exit(1)
		}
		fmt.Printf("determinism verified: %d per-batch state digests identical across two runs\n", rep.Compared)
		return
	}

	s, err := guvm.NewSimulator(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
		os.Exit(2)
	}
	var metricsSrv *obs.Server
	if ofl.MetricsAddr != "" {
		metricsSrv, err = obs.Serve(ofl.MetricsAddr, s.Obs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("metrics: serving on %s\n", metricsSrv.Addr())
	}
	var res *guvm.Result
	if *explicit {
		res, err = s.RunExplicit(w)
	} else {
		res, err = s.Run(w)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("workload        %s\n", res.Workload)
	fmt.Printf("kernel time     %.3f ms\n", res.KernelTime.Millis())
	fmt.Printf("total time      %.3f ms\n", res.TotalTime.Millis())
	fmt.Printf("batches         %d (%.3f ms total)\n", len(res.Batches), res.BatchTime().Millis())
	fmt.Printf("faults          %d raw, %d stale\n", res.DriverStats.TotalFaults, res.DriverStats.StaleFaults)
	fmt.Printf("migrated        %.1f MiB to GPU, %.1f MiB written back\n",
		float64(res.LinkStats.BytesToGPU)/(1<<20), float64(res.LinkStats.BytesToHost)/(1<<20))
	fmt.Printf("prefetched      %d pages\n", res.DriverStats.PrefetchedPages)
	fmt.Printf("evictions       %d VABlocks\n", res.DriverStats.Evictions)
	fmt.Printf("host OS         %d unmap calls (%d pages), %d DMA pages, %d radix nodes\n",
		res.HostStats.UnmapCalls, res.HostStats.PagesUnmapped,
		res.HostStats.DMAPagesMapped, res.HostStats.RadixNodes)
	if res.Audit != nil {
		fmt.Printf("audit           %d batches audited, %d checks, %d violations, final digest %016x\n",
			res.Audit.BatchesAudited, res.Audit.ChecksRun, len(res.Audit.Violations), res.Audit.FinalDigest)
	}

	if cfg.Inject.Enabled() {
		is := res.InjectStats
		fmt.Printf("injected faults (category: injected/retried/recovered/unrecovered)\n")
		fmt.Printf("  buffer-drop   %d/%d/%d/%d\n",
			is.BufferDrop.Injected, is.BufferDrop.Retried, is.BufferDrop.Recovered, is.BufferDrop.Unrecovered)
		fmt.Printf("  migrate       %d/%d/%d/%d\n",
			is.Migrate.Injected, is.Migrate.Retried, is.Migrate.Recovered, is.Migrate.Unrecovered)
		fmt.Printf("  host-alloc    %d/%d/%d/%d\n",
			is.HostAlloc.Injected, is.HostAlloc.Retried, is.HostAlloc.Recovered, is.HostAlloc.Unrecovered)
		fmt.Printf("  driver        %d migration retries, %d host-alloc failures, %d batch shrinks\n",
			res.DriverStats.MigRetries, res.DriverStats.HostAllocFailures, res.DriverStats.BatchShrinks)
		fmt.Printf("  device        %d buffer drops injected, %d re-emitted, %d lost to replay recovery\n",
			res.DeviceStats.InjectedDrops, res.DeviceStats.InjectedDropRetries, res.DeviceStats.InjectedDropsLost)
	}

	if cfg.HW.Enabled() && s.HW != nil {
		healthy, degraded, flapping := s.HW.EpochHealthCounts(0, res.TotalTime)
		fmt.Printf("hw fault domain (link epochs: %d healthy, %d degraded, %d flapping)\n",
			healthy, degraded, flapping)
		n := res.HWStats.LinkTransfer
		fmt.Printf("  link-transfer %d/%d/%d/%d (injected/retried/recovered/unrecovered)\n",
			n.Injected, n.Retried, n.Recovered, n.Unrecovered)
		fmt.Printf("  driver        %d degraded ops, %d link retries, %d degraded-aware shrinks\n",
			res.LinkStats.DegradedOps, res.DriverStats.HWLinkRetries, res.DriverStats.DegradedShrinks)
		if res.DeviceFailed {
			ds := res.DriverStats
			fmt.Printf("  device death  after batch %d: re-homed %d VABlocks, %d/%d resident pages (%.1f MiB) to host\n",
				cfg.HW.KillBatch, ds.RehomedBlocks, ds.RehomedPages, ds.ResidentAtKill,
				float64(ds.RehomedBytes)/(1<<20))
		}
	}

	if len(res.Batches) > 0 {
		durs := make([]float64, len(res.Batches))
		for i, b := range res.Batches {
			durs[i] = b.Duration().Micros()
		}
		s := stats.Summarize(durs)
		sort.Float64s(durs)
		fmt.Printf("batch time (us) mean %.1f  p50 %.1f  p95 %.1f  max %.1f\n",
			s.Mean, stats.Percentile(durs, 50), stats.Percentile(durs, 95), s.Max)
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
			os.Exit(1)
		}
		if err := trace.WriteBatchesCSVWith(f, res.Batches, *csvInject); err != nil {
			fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d batch records to %s\n", len(res.Batches), *csvOut)
	}
	if *faultsOut != "" {
		f, err := os.Create(*faultsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
			os.Exit(1)
		}
		if err := trace.WriteFaultsJSONL(f, res.Faults, res.FaultBatch); err != nil {
			fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d fault records to %s\n", len(res.Faults), *faultsOut)
	}
	// s.Obs is nil unless some obs flag made the config Active; with it
	// nil there are no artifacts to write.
	if s.Obs != nil {
		if pfl.Enabled() {
			fmt.Printf("\nbatch-time breakdown (profiler)\n%s", s.Obs.Profiler.BreakdownTable())
		}
		if err := ofl.WriteArtifacts(s.Obs.Tracer, s.Obs.Sampler, fmt.Printf); err != nil {
			fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
			os.Exit(1)
		}
		if err := pfl.WriteArtifacts(s.Obs.Profiler, fmt.Printf); err != nil {
			fmt.Fprintf(os.Stderr, "uvmsim: %v\n", err)
			os.Exit(1)
		}
	}

	if *analyze && len(res.Batches) > 0 {
		fmt.Println()
		d := analysis.Duplicates(res.Batches)
		fmt.Printf("duplicates      %d raw -> %d unique (%.0f%% dup: %d type-1, %d type-2)\n",
			d.Raw, d.Unique, d.DupPercent, d.Type1, d.Type2)
		fmt.Printf("block imbalance Gini %.2f over per-VABlock fault counts\n",
			analysis.VABlockImbalance(res.Batches))
		gaps := analysis.ServiceGaps(res.Batches)
		fmt.Printf("service gaps    mean %.1f us (max %.1f us)\n", gaps.Mean/1000, gaps.Max/1000)
		sh := analysis.Shares(res.Batches)
		fmt.Printf("time shares     fetch %.0f%%  dedup %.0f%%  blocks %.0f%%  populate %.0f%%  PT %.0f%%\n",
			100*sh.Fetch, 100*sh.Dedup, 100*sh.BlockMgmt, 100*sh.Populate, 100*sh.PageTable)
		fmt.Printf("                dma %.0f%%  unmap %.0f%%  transfer %.0f%%  evict %.0f%%  replay %.0f%%  other %.0f%%\n",
			100*sh.DMAMap, 100*sh.Unmap, 100*sh.Transfer, 100*sh.Evict, 100*sh.Replay, 100*sh.Other)
		phases := analysis.SegmentPhases(res.Batches, 8, 0.5)
		fmt.Printf("phases          %d batching phases:", len(phases))
		for _, p := range phases {
			fmt.Printf(" [%d-%d]~%.0f", p.FirstBatch, p.LastBatch, p.MeanFaults)
		}
		fmt.Println()
	}

	if *showBatches {
		fmt.Println("\nid  start_us  dur_us  raw  uniq  blocks  migKB  pf  evict  unmap_us  dma_us")
		for _, b := range res.Batches {
			fmt.Printf("%-3d %9.1f %7.1f %4d %5d %7d %6d %3d %6d %9.1f %7.1f\n",
				b.ID, float64(b.Start)/1000, float64(b.Duration())/1000,
				b.RawFaults, b.UniquePages, b.VABlocks, b.BytesMigrated>>10,
				b.PrefetchedPages, b.Evictions,
				float64(b.TUnmap)/1000, float64(b.TDMAMap)/1000)
		}
	}

	if metricsSrv != nil {
		if *metricsHold > 0 {
			fmt.Printf("metrics: holding endpoint for %s\n", *metricsHold)
			time.Sleep(*metricsHold)
		}
		metricsSrv.Close()
	}
}
