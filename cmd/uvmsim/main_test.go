package main

import (
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"guvm/internal/uvm"
)

// TestPrintPolicies checks the shared -list-policies output: every
// registered policy appears under its kind heading, with the kind
// headings themselves in registration order.
func TestPrintPolicies(t *testing.T) {
	var buf bytes.Buffer
	uvm.WritePolicies(&buf)
	out := buf.String()

	last := -1
	for _, kind := range []uvm.PolicyKind{uvm.KindEviction, uvm.KindPrefetch, uvm.KindBatchSizing, uvm.KindArchitecture} {
		i := strings.Index(out, string(kind)+":")
		if i < 0 {
			t.Errorf("listing missing %q heading:\n%s", kind, out)
			continue
		}
		if i < last {
			t.Errorf("kind %q listed out of registration order", kind)
		}
		last = i
	}
	for _, p := range uvm.Policies() {
		if !strings.Contains(out, "  "+p.Name) {
			t.Errorf("listing missing policy %q:\n%s", p.Name, out)
		}
	}
}

// TestUnknownPolicyRejected checks the typed error path the CLI rides on:
// an unregistered name must fail with an UnknownPolicyError that names the
// valid options.
func TestUnknownPolicyRejected(t *testing.T) {
	var cfg uvm.Config
	sel := uvm.PolicySelection{Eviction: "clock"}
	err := sel.Apply(&cfg)
	if err == nil {
		t.Fatal("Apply accepted unregistered eviction policy \"clock\"")
	}
	if !errors.Is(err, uvm.ErrUnknownPolicy) {
		t.Fatalf("error %v does not wrap ErrUnknownPolicy", err)
	}
	var upe *uvm.UnknownPolicyError
	if !errors.As(err, &upe) {
		t.Fatalf("error %v is not an *UnknownPolicyError", err)
	}
	for _, valid := range []string{"lru", "fifo", "random", "lfu"} {
		if !strings.Contains(err.Error(), valid) {
			t.Errorf("error %q does not name valid option %q", err, valid)
		}
	}
}

// TestCLIPolicyFlags builds the real binary and exercises -list-policies
// and the unknown-name rejection end to end.
func TestCLIPolicyFlags(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "uvmsim")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-list-policies").CombinedOutput()
	if err != nil {
		t.Fatalf("-list-policies: %v\n%s", err, out)
	}
	for _, name := range []string{"lru", "lfu", "tree", "cross-block", "fixed", "adaptive",
		"host-driven", "gpu-driven", "access-counter"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list-policies output missing %q:\n%s", name, out)
		}
	}

	cmd := exec.Command(bin, "-workload", "vecadd", "-evict", "clock")
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("-evict clock accepted; output:\n%s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("-evict clock: want exit code 2, got %v", err)
	}
	if !strings.Contains(string(out), "unknown eviction policy") ||
		!strings.Contains(string(out), "valid: lru, fifo, random, lfu") {
		t.Errorf("rejection message does not name the valid options:\n%s", out)
	}

	cmd = exec.Command(bin, "-workload", "vecadd", "-arch", "warp-speed")
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("-arch warp-speed accepted; output:\n%s", out)
	}
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("-arch warp-speed: want exit code 2, got %v", err)
	}
	if !strings.Contains(string(out), "unknown architecture policy") ||
		!strings.Contains(string(out), "valid: host-driven, gpu-driven, access-counter") {
		t.Errorf("architecture rejection does not name the valid options:\n%s", out)
	}
}

// TestCLIHWFaultDrill builds the real binary and runs the audited
// device-death drill end to end: the run must exit zero, report the
// re-homing, and show a clean audit.
func TestCLIHWFaultDrill(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "uvmsim")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin,
		"-workload", "stream", "-mb", "8", "-audit",
		"-hw-fault", "-hw-kill-batch", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("hw-fault drill: %v\n%s", err, out)
	}
	for _, want := range []string{
		"hw fault domain",
		"device death  after batch 3",
		" 0 violations",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("drill output missing %q:\n%s", want, out)
		}
	}

	// Degraded-mode determinism through the CLI flag path.
	out, err = exec.Command(bin,
		"-workload", "stream", "-mb", "8",
		"-hw-fault", "-verify-determinism").CombinedOutput()
	if err != nil {
		t.Fatalf("-hw-fault -verify-determinism: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "determinism verified") {
		t.Errorf("determinism output:\n%s", out)
	}
}
