#!/bin/sh
# Structural lint for the staged batch pipeline (PR 5). The driver
# decomposition is load-bearing — digest goldens prove behaviour, this
# gate proves structure: every stage file exists, the driver core stays a
# core (no stage logic creeping back into driver.go), and policy knobs are
# selected through the registry, not poked directly from the CLIs.
# Run from the repository root (scripts/check.sh and CI both do).
set -eu

fail() { echo "lint: $*" >&2; status=1; }
status=0

# 1. The pipeline decomposition: one file per stage plus the shared
#    context/registry seams. A missing file means a refactor quietly
#    re-merged a stage into the monolith.
for f in pipeline.go fetch.go dedup.go prefetchplan.go residency.go \
         transfer.go replay.go registry.go; do
  [ -f "internal/uvm/$f" ] || fail "missing pipeline stage file internal/uvm/$f"
done

# 2. driver.go stays the thin core: construction, allocation API and
#    state. 500 lines is generous headroom over its current ~400; hitting
#    this bound means stage logic is accreting in the wrong file.
lines=$(wc -l < internal/uvm/driver.go)
if [ "$lines" -gt 500 ]; then
  fail "internal/uvm/driver.go is $lines lines (>500): stage logic belongs in the per-stage files"
fi

# 3. Stage entry points live in their stage files, not in driver.go, and
#    the stage graphs live in the architecture registry (arch.go) since
#    the PR-10 lift — pipeline.go only dispatches through d.arch.
for sym in 'dedupStage' 'serviceStage' 'crossBlockStage' 'replayStage' \
           'residencyStep' 'prefetchPlanStep' 'populateStep' 'transferStep' \
           'counterGateStep'; do
  if grep -q "func ($sym)" internal/uvm/driver.go 2>/dev/null; then
    fail "stage method $sym defined in driver.go; move it to its stage file"
  fi
done
[ -f internal/uvm/arch.go ] || fail "missing architecture registry internal/uvm/arch.go"
grep -q 'hostBatchStages' internal/uvm/arch.go || fail "arch.go lost the hostBatchStages stage graph"
grep -q 'hostBlockSteps' internal/uvm/arch.go || fail "arch.go lost the hostBlockSteps stage graph"
grep -q 'registerArchitecture' internal/uvm/arch.go || fail "arch.go lost registerArchitecture"

# 4. Hot-path structural guards (PR 8). The calendar-queue engine swap
#    and the struct-of-arrays batch stages are load-bearing perf work;
#    these greps keep the two easiest regressions from creeping back in.
#
#    4a. No non-test file under the engine or driver hot paths may
#    import container/heap — the binary heap survives only as the test
#    oracle (internal/sim/calqueue_test.go, the fuzz target).
for pkg in internal/sim internal/uvm; do
  for f in "$pkg"/*.go; do
    case "$f" in *_test.go) continue ;; esac
    if grep -q '"container/heap"' "$f"; then
      fail "$f imports container/heap; the heap is test-oracle-only since the calendar-queue swap"
    fi
  done
done

#    4b. The per-batch stage files must not allocate maps: the dedup
#    rewrite replaced the per-batch map churn with sorted-key scans, and
#    a map reappearing in a stage file means the allocation diet is
#    regressing (TestBatchServiceAllocGuard would catch the count; this
#    names the culprit).
for f in internal/uvm/dedup.go internal/uvm/fetch.go internal/uvm/prefetchplan.go \
         internal/uvm/residency.go internal/uvm/transfer.go internal/uvm/replay.go; do
  if grep -qn 'make(map' "$f"; then
    fail "$f allocates a map; batch stages are struct-of-arrays (see dedup.go's sort-scan)"
  fi
done

# 5. Profiler hot-path guards (PR 9). The profiler's record path runs
#    inside the batch pipeline on every fault/batch; it must stay on the
#    allocation diet (no map allocation — heat lives in a BlockDir) and
#    in virtual time (no wall-clock reads in sim-time attribution).
if grep -qn 'make(map' internal/obs/profiler.go; then
  fail "internal/obs/profiler.go allocates a map; the record path is map-free (BlockDir + pooled slices)"
fi
if grep -qn 'time\.Now' internal/obs/profiler.go; then
  fail "internal/obs/profiler.go reads wall-clock time; attribution is sim-time only"
fi
for f in internal/uvm/*.go; do
  case "$f" in *_test.go) continue ;; esac
  if grep -qn 'time\.Now' "$f"; then
    fail "$f reads wall-clock time inside the sim-time driver"
  fi
done

# 6. Stage implementations stay architecture-agnostic (PR 10): all
#    architecture dispatch goes through the registry's stage/block-step
#    lists, so no stage file may branch on the selected architecture.
#    (arch.go itself declares the graphs; driver.go applies the payload
#    at construction — both are exempt.)
for f in internal/uvm/pipeline.go internal/uvm/fetch.go internal/uvm/dedup.go \
         internal/uvm/prefetchplan.go internal/uvm/residency.go \
         internal/uvm/transfer.go internal/uvm/replay.go; do
  if grep -qn 'cfg\.Architecture\|\.arch\.info\.Name\|Architecture ==' "$f"; then
    fail "$f branches on the selected architecture; stages must stay architecture-agnostic (dispatch via arch.go)"
  fi
done

# 7. CLIs select policies by registry name (SystemConfig.Policies), never
#    by writing the eviction knob directly — direct writes bypass the
#    unknown-name validation and the -list-policies contract. Since the
#    shared flag block (uvm.RegisterPolicyFlags) they must also not
#    re-declare the policy flags locally, so names and help text cannot
#    drift between tools.
for cli in uvmsim uvmsweep faultviz paperfigs sweepd; do
  if grep -qn 'Driver\.Eviction[[:space:]]*=' "cmd/$cli/main.go"; then
    fail "cmd/$cli sets Driver.Eviction directly; route it through Policies (the registry)"
  fi
  if grep -qn 'flag\.String("evict"\|flag\.String("arch"' "cmd/$cli/main.go"; then
    fail "cmd/$cli declares its own policy flags; use uvm.RegisterPolicyFlags / RegisterPolicyListFlags"
  fi
done

if [ "$status" -ne 0 ]; then
  exit 1
fi
echo "lint: pipeline structure OK"
