#!/bin/sh
# Hot-path microbenchmark harness. Runs the allocation-diet benchmarks —
# BenchmarkBatchService (the driver's whole fault-servicing pipeline,
# internal/uvm), BenchmarkBatchServiceObserved (the same pipeline with a
# batch observer attached, quantifying the observability hook's cost),
# and BenchmarkEngineDispatch (the event loop, internal/sim) — with
# -benchmem and writes a JSON report holding the measured ns/op, B/op and
# allocs/op next to the frozen PR-3 numbers, so every PR from here on has
# a performance trajectory to compare against (the PR5 acceptance bar is
# that the staged-pipeline BenchmarkBatchService stays at or below the
# frozen PR-3 allocs/op; TestBatchServiceAllocGuard enforces it).
#
# Usage: scripts/bench.sh [-quick] [-out BENCH_pr5.json]
#   -quick   CI smoke mode: one benchmark iteration each, just enough to
#            prove the benchmarks run and the JSON pipeline works.
set -eu

out=BENCH_pr5.json
benchtime=2s
while [ $# -gt 0 ]; do
  case "$1" in
    -quick) benchtime=1x ;;
    -out) shift; out=$1 ;;
    *) echo "usage: scripts/bench.sh [-quick] [-out FILE]" >&2; exit 2 ;;
  esac
  shift
done

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkBatchService$' -benchmem -benchtime "$benchtime" ./internal/uvm | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkBatchServiceObserved$' -benchmem -benchtime "$benchtime" ./internal/uvm | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkEngineDispatch$' -benchmem -benchtime "$benchtime" ./internal/sim | tee -a "$raw"

# Fold "BenchmarkName[-P] N ns/op B/op allocs/op" lines into JSON fields,
# pairing them with the frozen PR-3 measurements (BENCH_pr3.json,
# recorded with -benchtime 2s).
awk -v quick="$benchtime" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    measured[name] = sprintf("{\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", $3, $5, $7)
    order[n++] = name
  }
  END {
    baseline["BenchmarkBatchService"]   = "{\"ns_per_op\": 5634438, \"bytes_per_op\": 2221339, \"allocs_per_op\": 39444}"
    baseline["BenchmarkEngineDispatch"] = "{\"ns_per_op\": 88.71, \"bytes_per_op\": 0, \"allocs_per_op\": 0}"
    printf "{\n  \"pr\": 5,\n  \"benchtime\": \"%s\",\n", quick
    printf "  \"baseline_pr3\": {\n"
    printf "    \"BenchmarkBatchService\": %s,\n", baseline["BenchmarkBatchService"]
    printf "    \"BenchmarkEngineDispatch\": %s\n  },\n", baseline["BenchmarkEngineDispatch"]
    printf "  \"measured\": {\n"
    for (i = 0; i < n; i++) {
      printf "    \"%s\": %s%s\n", order[i], measured[order[i]], (i < n-1 ? "," : "")
    }
    printf "  }\n}\n"
  }
' "$raw" > "$out"
echo "wrote $out"
