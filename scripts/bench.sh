#!/bin/sh
# Hot-path microbenchmark harness. Runs the hot-path benchmarks —
# BenchmarkBatchService (the driver's whole fault-servicing pipeline,
# internal/uvm), BenchmarkBatchServiceObserved (the same pipeline with a
# batch observer attached), BenchmarkBatchServiceProfiled (with the
# fault-lifecycle profiler's full record path attached; budget ≤10% over
# the base pipeline), BenchmarkLargeWorkingSet (a 4 GB sparse
# working set stressing the block directories), and
# BenchmarkEngineDispatch (the calendar-queue event loop, internal/sim)
# — with -benchmem and writes a JSON report holding the measured ns/op,
# B/op and allocs/op next to the previous PR's frozen numbers.
#
# The baseline is READ FROM THE FROZEN FILE, not hard-coded: a PR that
# forgets to freeze its numbers breaks the next PR's bench run instead
# of silently comparing against stale constants (which is how the
# trajectory went dark between PR 5 and PR 8).
#
# Usage: scripts/bench.sh [-quick] [-out BENCH_pr9.json] [-baseline BENCH_pr8.json]
#   -quick   CI smoke mode: one benchmark iteration each, just enough to
#            prove the benchmarks run and the JSON pipeline works.
set -eu

out=BENCH_pr9.json
baseline=BENCH_pr8.json
benchtime=2s
while [ $# -gt 0 ]; do
  case "$1" in
    -quick) benchtime=1x ;;
    -out) shift; out=$1 ;;
    -baseline) shift; baseline=$1 ;;
    *) echo "usage: scripts/bench.sh [-quick] [-out FILE] [-baseline FILE]" >&2; exit 2 ;;
  esac
  shift
done

if [ ! -f "$baseline" ]; then
  echo "bench: baseline file $baseline not found" >&2
  echo "bench: every bench run compares against the previous PR's frozen trajectory;" >&2
  echo "bench: restore the frozen JSON or point -baseline at it" >&2
  exit 1
fi

# Pull the baseline's measured section (the file is machine-written by
# this script, so the two-space indentation is stable).
base=$(sed -n '/^  "measured": {$/,/^  }$/p' "$baseline" | sed '1d;$d')
if [ -z "$base" ]; then
  echo "bench: no measured section found in $baseline; refusing to compare against nothing" >&2
  exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkBatchService$' -benchmem -benchtime "$benchtime" ./internal/uvm | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkBatchServiceObserved$' -benchmem -benchtime "$benchtime" ./internal/uvm | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkBatchServiceProfiled$' -benchmem -benchtime "$benchtime" ./internal/uvm | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkLargeWorkingSet$' -benchmem -benchtime "$benchtime" ./internal/uvm | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkEngineDispatch$' -benchmem -benchtime "$benchtime" ./internal/sim | tee -a "$raw"

# Fold "BenchmarkName[-P] N ns/op B/op allocs/op" lines into JSON fields,
# pairing them with the baseline measurements read above.
awk -v quick="$benchtime" -v basefile="$baseline" -v base="$base" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    measured[name] = sprintf("{\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", $3, $5, $7)
    order[n++] = name
  }
  END {
    printf "{\n  \"pr\": 9,\n  \"benchtime\": \"%s\",\n", quick
    printf "  \"baseline_file\": \"%s\",\n", basefile
    printf "  \"baseline\": {\n%s\n  },\n", base
    printf "  \"measured\": {\n"
    for (i = 0; i < n; i++) {
      printf "    \"%s\": %s%s\n", order[i], measured[order[i]], (i < n-1 ? "," : "")
    }
    printf "  }\n}\n"
  }
' "$raw" > "$out"
echo "wrote $out (baseline: $baseline)"
