#!/bin/sh
# Chaos-recovery smoke for the sweepd service: start a daemon with slow
# point injection, submit a sweep grid, SIGKILL it mid-sweep, restart on
# the same store, and require (a) journal recovery with cache hits and
# (b) result digests identical to a daemon computing the same grid on a
# fresh store — the crash may cost time, never answers.
set -eu

tmpdir=$(mktemp -d)
pids=""
cleanup() {
  for p in $pids; do kill "$p" 2> /dev/null || true; done
  for p in $pids; do wait "$p" 2> /dev/null || true; done
  rm -rf "$tmpdir"
}
trap cleanup EXIT

go build -o "$tmpdir/sweepd" ./cmd/sweepd

SPEC='{"workload":"stream","mb":1,"batches":[128,256],"caps_mb":[2,32]}'

# start_daemon log store [extra flags...]: launches sweepd, scrapes the
# bound address into $addr and the pid into $pid.
start_daemon() {
  log=$1
  dir=$2
  shift 2
  "$tmpdir/sweepd" -addr 127.0.0.1:0 -store "$dir" -jobs 2 "$@" > "$log" 2>&1 &
  pid=$!
  pids="$pids $pid"
  addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^sweepd: serving on //p' "$log")
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ]
}

# job_field url field: extracts a numeric field from a job status view.
job_field() {
  curl -s "$1" | sed -n "s/.*\"$2\":\([0-9]*\).*/\1/p"
}

# digests url: the sorted (config digest, state digest) pairs of a job's
# result stream — the comparison key for bit-identity.
digests() {
  curl -s "$1" \
    | sed -n 's/.*"config_digest":"\([0-9a-f]*\)","state_digest":"\([0-9a-f]*\)".*/\1 \2/p' \
    | sort
}

# --- Phase 1: run into a SIGKILL mid-sweep -------------------------------
start_daemon "$tmpdir/a.log" "$tmpdir/store" \
  -inject-slow-rate 1 -inject-slow-delay 300ms
a_pid=$pid
a_addr=$addr

curl -s -o "$tmpdir/submit.json" -w '%{http_code}' \
  -d "$SPEC" "http://$a_addr/sweep/jobs" | grep -q '^202$'
grep -q '"id":"job-1"' "$tmpdir/submit.json"

# Wait for at least one durable point, but kill before the job finishes.
for _ in $(seq 1 200); do
  done_pts=$(job_field "http://$a_addr/sweep/jobs/job-1" completed)
  [ "${done_pts:-0}" -ge 1 ] && break
  sleep 0.05
done
[ "${done_pts:-0}" -ge 1 ]
curl -s "http://$a_addr/sweep/jobs/job-1" | grep -q '"state":"done"' && {
  echo "chaos: job finished before the kill; injection did not bite" >&2
  exit 1
}

kill -9 "$a_pid"
wait "$a_pid" 2> /dev/null || true

# --- Phase 2: restart on the same store, recover, finish ----------------
start_daemon "$tmpdir/b.log" "$tmpdir/store"
b_addr=$addr
grep -q 'recovered.*cached point' "$tmpdir/b.log"
grep -q 'resumed 1 incomplete job' "$tmpdir/b.log"

for _ in $(seq 1 200); do
  curl -s "http://$b_addr/sweep/jobs/job-1" | grep -q '"state":"done"' && break
  sleep 0.05
done
curl -s "http://$b_addr/sweep/jobs/job-1" | grep -q '"state":"done"'
cached=$(job_field "http://$b_addr/sweep/jobs/job-1" cached)
[ "${cached:-0}" -ge 1 ] # pre-kill work must have survived as cache hits

# The recovered daemon publishes sweepd metrics and a healthy healthz.
curl -s "http://$b_addr/metrics" | grep -q '^sweepd_points_cached_total [1-9]'
curl -s -o /dev/null -w '%{http_code}' "http://$b_addr/sweep/healthz" | grep -q '^200$'

digests "http://$b_addr/sweep/jobs/job-1/results" > "$tmpdir/recovered.digests"
[ "$(wc -l < "$tmpdir/recovered.digests")" -eq 4 ]

# --- Phase 3: same grid on a pristine store must match bit-for-bit ------
start_daemon "$tmpdir/c.log" "$tmpdir/fresh-store"
c_addr=$addr
curl -s -d "$SPEC" "http://$c_addr/sweep/jobs" > /dev/null
for _ in $(seq 1 200); do
  curl -s "http://$c_addr/sweep/jobs/job-1" | grep -q '"state":"done"' && break
  sleep 0.05
done
digests "http://$c_addr/sweep/jobs/job-1/results" > "$tmpdir/fresh.digests"
cmp "$tmpdir/recovered.digests" "$tmpdir/fresh.digests"

echo "chaos: kill -9 recovery preserved all $(wc -l < "$tmpdir/recovered.digests") digests"
