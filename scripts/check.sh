#!/bin/sh
# Full verification gate: vet, build, the test suite under the race
# detector, and audited end-to-end runs of the paper's reference
# workloads. Run from the repository root (or via `make check`).
set -eux
go vet ./...
./scripts/lint.sh
go build ./...
go test -race ./...

# End-to-end audit gate: the Figure-3 (vecadd) and Figure-8 (stream)
# workloads must complete with the runtime invariant auditor checking
# every batch, and the stream run must produce bit-identical per-batch
# state digests across two runs.
go run ./cmd/uvmsim -workload vecadd -audit > /dev/null
go run ./cmd/uvmsim -workload stream -mb 16 -audit > /dev/null
go run ./cmd/uvmsim -workload stream -mb 16 -verify-determinism > /dev/null

# Degraded-mode gate: the same stream run must stay audit-clean and
# digest-deterministic with the hardware fault domain engaged, and the
# multi-GPU device-death drill must conserve every page and replay
# digest-identically under the same seed.
go run ./cmd/uvmsim -workload stream -mb 16 -audit -hw-fault > /dev/null
go run ./cmd/uvmsim -workload stream -mb 16 -hw-fault -verify-determinism > /dev/null
go run ./cmd/uvmsim -workload stream -mb 16 -audit -hw-fault -hw-kill-batch 3 > /dev/null
go test -run 'TestMultiGPUDeviceDeathDrill|TestSingleDeviceKillRehomesPages' -count=1 .

# Observability gate: the audited vecadd Chrome trace must match the
# golden file byte-for-byte, and the live /metrics endpoint must serve a
# Prometheus exposition of a known counter from a running simulation.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/uvmsim -workload vecadd -audit -trace-out "$tmpdir/trace.json" > /dev/null
cmp testdata/vecadd_trace.golden.json "$tmpdir/trace.json"

# Profiler gate: the same audited vecadd run with the fault-lifecycle
# profiler attached must write the golden batch-time breakdown CSV
# byte-for-byte (proving both the attribution math and that profiling
# did not perturb the batch schedule the breakdown is derived from).
go run ./cmd/uvmsim -workload vecadd -audit -profile-dir "$tmpdir/prof" > /dev/null
cmp testdata/vecadd_breakdown.golden.csv "$tmpdir/prof/breakdown.csv"

go build -o "$tmpdir/uvmsim" ./cmd/uvmsim
"$tmpdir/uvmsim" -workload stream -mb 16 -metrics-addr 127.0.0.1:0 -metrics-hold 20s \
  > "$tmpdir/uvmsim.log" 2>&1 &
simpid=$!
addr=""
for _ in $(seq 1 50); do
  addr=$(sed -n 's/^metrics: serving on //p' "$tmpdir/uvmsim.log")
  [ -n "$addr" ] && break
  sleep 0.2
done
[ -n "$addr" ]
# The first exposition is published at the first batch boundary; retry
# briefly so the probe cannot race the run's start.
ok=""
for _ in $(seq 1 50); do
  if curl -s "http://$addr/metrics" | grep -q '^guvm_driver_batches_total '; then
    ok=1
    break
  fi
  sleep 0.2
done
[ -n "$ok" ]
curl -s "http://$addr/status" | grep -q '"workload"'
kill "$simpid" 2> /dev/null || true
wait "$simpid" 2> /dev/null || true

# Architecture gate: every registered UVM architecture must complete the
# audited vecadd run (invariants hold under all three stage graphs), the
# two alternatives must be digest-deterministic, and the architecture
# comparison experiment must be byte-identical at -jobs 1 vs -jobs 8.
for arch in host-driven gpu-driven access-counter; do
  go run ./cmd/uvmsim -workload vecadd -audit -arch "$arch" > /dev/null
  go run ./cmd/uvmsim -workload vecadd -arch "$arch" -verify-determinism > /dev/null
done
go run ./cmd/paperfigs -only exp_architectures -out "$tmpdir/arch1" -jobs 1 > /dev/null
go run ./cmd/paperfigs -only exp_architectures -out "$tmpdir/arch8" -jobs 8 > /dev/null
diff -r "$tmpdir/arch1" "$tmpdir/arch8"

# Chaos gate: SIGKILL the sweep service mid-sweep; the restart must
# recover the journal, finish the job from cache, and produce digests
# identical to a fresh-store run.
./scripts/chaos.sh
