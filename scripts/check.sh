#!/bin/sh
# Full verification gate: vet, build, the test suite under the race
# detector, and audited end-to-end runs of the paper's reference
# workloads. Run from the repository root (or via `make check`).
set -eux
go vet ./...
go build ./...
go test -race ./...

# End-to-end audit gate: the Figure-3 (vecadd) and Figure-8 (stream)
# workloads must complete with the runtime invariant auditor checking
# every batch, and the stream run must produce bit-identical per-batch
# state digests across two runs.
go run ./cmd/uvmsim -workload vecadd -audit > /dev/null
go run ./cmd/uvmsim -workload stream -mb 16 -audit > /dev/null
go run ./cmd/uvmsim -workload stream -mb 16 -verify-determinism > /dev/null
