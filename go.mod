module guvm

go 1.22
