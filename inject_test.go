package guvm

import (
	"errors"
	"reflect"
	"testing"

	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

// TestFaultBufferOverflowReplayRecovers is the overflow regression test: a
// fault buffer far smaller than the fault population must drop records
// (hardware overflow), yet the run completes because dropped accesses
// re-fault after each replay — and the whole recovery is deterministic.
func TestFaultBufferOverflowReplayRecovers(t *testing.T) {
	runOnce := func() (*Result, int) {
		cfg := testConfig()
		cfg.GPU.FaultBufferEntries = 24 // tiny: guaranteed overflow
		cfg.Driver.PrefetchEnabled = false
		cfg.Driver.Upgrade64K = false
		s := mustSim(t, cfg)
		res, err := s.Run(workloads.NewStream(8<<20, 16))
		if err != nil {
			t.Fatalf("overflowing run failed: %v", err)
		}
		return res, s.Device.Buffer.Dropped
	}

	res, dropped := runOnce()
	if dropped == 0 {
		t.Fatal("no overflow drops with a 24-entry buffer")
	}
	if res.DeviceStats.Refaults == 0 {
		t.Fatal("no refaults; dropped accesses were never replayed")
	}
	if res.BytesMigrated() == 0 {
		t.Fatal("no data migrated")
	}

	// Determinism across runs, drop/replay counters included.
	res2, dropped2 := runOnce()
	if dropped != dropped2 {
		t.Fatalf("drop count diverges: %d vs %d", dropped, dropped2)
	}
	if res.DeviceStats != res2.DeviceStats {
		t.Fatalf("device stats diverge:\n%+v\n%+v", res.DeviceStats, res2.DeviceStats)
	}
	if !reflect.DeepEqual(res.Batches, res2.Batches) {
		t.Fatal("batch telemetry diverges between identical overflowing runs")
	}
}

// injectedConfig enables all three injection categories at survivable
// rates with deep retry budgets.
func injectedConfig() SystemConfig {
	cfg := testConfig()
	cfg.Inject.Seed = 42
	cfg.Inject.BufferDropRate = 0.05
	cfg.Inject.BufferDropRetries = 12
	cfg.Inject.MigrateFailRate = 0.1
	cfg.Inject.MigrateMaxRetries = 12
	cfg.Inject.HostAllocFailRate = 0.05
	cfg.Inject.HostAllocMaxRetries = 20
	return cfg
}

// TestInjectionEndToEndDeterministic: same seed, same injection config →
// two byte-identical runs, injected/retried/recovered counters included.
func TestInjectionEndToEndDeterministic(t *testing.T) {
	runOnce := func() *Result {
		res, err := mustSim(t, injectedConfig()).Run(workloads.NewStream(8<<20, 16))
		if err != nil {
			t.Fatalf("injected run failed: %v", err)
		}
		return res
	}
	a, b := runOnce(), runOnce()

	if a.InjectStats.BufferDrop.Injected == 0 &&
		a.InjectStats.Migrate.Injected == 0 && a.InjectStats.HostAlloc.Injected == 0 {
		t.Fatal("no faults injected despite nonzero rates")
	}
	if a.InjectStats != b.InjectStats {
		t.Fatalf("injection counters diverge:\n%+v\n%+v", a.InjectStats, b.InjectStats)
	}
	if a.KernelTime != b.KernelTime || a.TotalTime != b.TotalTime {
		t.Fatalf("timing diverges: %v/%v vs %v/%v", a.KernelTime, a.TotalTime, b.KernelTime, b.TotalTime)
	}
	if a.DriverStats != b.DriverStats || a.DeviceStats != b.DeviceStats {
		t.Fatal("stats diverge between identically seeded injected runs")
	}
	if !reflect.DeepEqual(a.Batches, b.Batches) {
		t.Fatal("batch telemetry diverges between identically seeded injected runs")
	}
}

// TestInjectionRecoveryVisible: the survivable-rate run above must
// actually exercise all three categories and recover.
func TestInjectionRecoveryVisible(t *testing.T) {
	res, err := mustSim(t, injectedConfig()).Run(workloads.NewStream(8<<20, 16))
	if err != nil {
		t.Fatalf("injected run failed: %v", err)
	}
	is := res.InjectStats
	if is.BufferDrop.Injected == 0 || is.Migrate.Injected == 0 || is.HostAlloc.Injected == 0 {
		t.Fatalf("a category injected nothing: %+v", is)
	}
	if is.BufferDrop.Recovered == 0 || is.Migrate.Recovered == 0 || is.HostAlloc.Recovered == 0 {
		t.Fatalf("a category recovered nothing: %+v", is)
	}
	if is.Migrate.Unrecovered != 0 || is.HostAlloc.Unrecovered != 0 {
		t.Fatalf("fatal failures under deep retry budgets: %+v", is)
	}
	if res.DriverStats.MigRetries == 0 || res.DriverStats.HostAllocFailures == 0 {
		t.Fatalf("driver saw no retries: %+v", res.DriverStats)
	}
}

// TestInjectionDisabledBitIdentical checks the headline guarantee at the
// public API: a config whose injection rates are zero (whatever the seed)
// yields exactly the same result as the default config.
func TestInjectionDisabledBitIdentical(t *testing.T) {
	runOnce := func(cfg SystemConfig) *Result {
		res, err := mustSim(t, cfg).Run(workloads.NewStream(8<<20, 16))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := runOnce(testConfig())
	cfg := testConfig()
	cfg.Inject.Seed = 0xdeadbeef // must be irrelevant at zero rates
	other := runOnce(cfg)

	if base.KernelTime != other.KernelTime || base.TotalTime != other.TotalTime {
		t.Fatalf("timing differs with an inert injector: %v/%v vs %v/%v",
			base.KernelTime, base.TotalTime, other.KernelTime, other.TotalTime)
	}
	if base.DriverStats != other.DriverStats || base.DeviceStats != other.DeviceStats ||
		base.HostStats != other.HostStats || base.LinkStats != other.LinkStats {
		t.Fatal("stats differ with an inert injector")
	}
	if !reflect.DeepEqual(base.Batches, other.Batches) {
		t.Fatal("batch telemetry differs with an inert injector")
	}
	if other.InjectStats != (Result{}).InjectStats {
		t.Fatalf("inert injector reported activity: %+v", other.InjectStats)
	}
}

// TestUnrecoverableDropStalls drops every fault with no re-emission
// budget: the event queue drains with warps still waiting, and the run
// must surface the typed stall diagnostic instead of hanging.
func TestUnrecoverableDropStalls(t *testing.T) {
	cfg := testConfig()
	cfg.Inject.BufferDropRate = 1.0
	cfg.Inject.BufferDropRetries = 0
	_, err := mustSim(t, cfg).Run(workloads.NewStream(4<<20, 8))
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

// TestMigrationExhaustionSurfacesThroughAPI: a fatal injected migration
// propagates as a typed error from Run, not a panic.
func TestMigrationExhaustionSurfacesThroughAPI(t *testing.T) {
	cfg := testConfig()
	cfg.Inject.MigrateFailRate = 1.0
	cfg.Inject.MigrateMaxRetries = 1
	_, err := mustSim(t, cfg).Run(workloads.NewStream(4<<20, 8))
	if err == nil {
		t.Fatal("run succeeded with a 100% transfer fail rate")
	}
	if !errors.Is(err, uvm.ErrMigrationFailed) {
		t.Fatalf("err = %v, want uvm.ErrMigrationFailed", err)
	}
}

// TestInvalidInjectionConfigRejected: NewSimulator validates rates.
func TestInvalidInjectionConfigRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Inject.BufferDropRate = 1.5
	if _, err := NewSimulator(cfg); err == nil {
		t.Fatal("out-of-range injection rate accepted")
	}
}
